package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"splitft/internal/core"
	"splitft/internal/harness"
	"splitft/internal/metrics"
	"splitft/internal/model"
	"splitft/internal/ncl"
	"splitft/internal/simnet"
)

// The repl experiment sweeps the NCL replication policies behind
// `splitft-bench repl`: for each policy x hardware profile it fills one log
// with synchronous records, reads the peer registry's memory bill, then
// crashes the application and times a full recovery. The three columns are
// the policy trade-off the redesign exists to expose — memory overhead
// (mirror ~3x vs ec(k,m) at (k+m)/k), write latency (quorum's one-RTT
// single-WR ack vs mirror's data+header pair vs ec's encode+all-cells ack),
// and recovery time (mirror's prefetch vs reconstruction/read-repair).
// Virtual time keeps every number deterministic; BENCH_repl.json pins the
// sweep in CI and TestReplPerfGate fails loudly on silent drift.

// ReplRow is one measured (policy, profile) cell.
type ReplRow struct {
	Policy     string  `json:"policy"`
	Profile    string  `json:"profile"`
	MemFactor  float64 `json:"mem_factor"` // remote bytes per byte of log capacity
	WriteP50NS int64   `json:"write_p50_ns"`
	WriteP99NS int64   `json:"write_p99_ns"`
	RecoveryNS int64   `json:"recovery_ns"`
}

// ReplReport is the whole sweep, JSON-shaped for BENCH_repl.json.
type ReplReport struct {
	Rows []ReplRow `json:"rows"`
}

// Row returns the (policy, profile) cell, or nil.
func (r ReplReport) Row(policy, profile string) *ReplRow {
	for i := range r.Rows {
		if r.Rows[i].Policy == policy && r.Rows[i].Profile == profile {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render formats the report as a table.
func (r ReplReport) Render() string {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Policy, row.Profile,
			fmt.Sprintf("%.2fx", row.MemFactor),
			fmtUS(time.Duration(row.WriteP50NS)),
			fmtUS(time.Duration(row.WriteP99NS)),
			fmt.Sprintf("%.2f", time.Duration(row.RecoveryNS).Seconds()*1000),
		})
	}
	return fmt.Sprintf("NCL replication policies (%d x 4 KiB records, virtual time)\n", replRecords) +
		metrics.Table([]string{"Policy", "Profile", "Memory", "Write p50 (us)", "Write p99 (us)", "Recovery (ms)"}, rows)
}

// WriteJSON writes the report to path (BENCH_repl.json).
func (r ReplReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReplPolicies is the sweep's policy axis: the paper's mirror protocol as
// the anchor, the erasure-coded layout at the canonical 4+2 shape, and the
// one-RTT quorum variant.
var ReplPolicies = []string{"mirror", "ec:4,2", "quorum"}

const (
	// replRecords x replRecBytes fills ~1 MiB of log — large enough that
	// recovery moves real bytes, small enough to sweep every profile.
	replRecords  = 256
	replRecBytes = 4096
	// replCapacity leaves headroom so no policy's frame budget interferes
	// with the measurement (records are >= 2 KiB, the ec sizing floor).
	replCapacity = int64(replRecords*replRecBytes) + (1 << 20)
	// replPeerMem fixes the lendable pool so the registry's memory bill
	// (LendableMem - Avail) is attributable to the one benchmark log.
	replPeerMem = 512 << 20
)

// RunRepl runs the policy x profile sweep and returns the report.
func RunRepl(sc Scale, seed int64) (ReplReport, error) {
	var rep ReplReport
	for _, pol := range ReplPolicies {
		for _, profName := range model.Names() {
			row, err := replOnce(sc, seed, pol, profName)
			if err != nil {
				return rep, fmt.Errorf("repl %s/%s: %w", pol, profName, err)
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// replOnce measures one (policy, profile) cell on a fresh cluster.
func replOnce(sc Scale, seed int64, policy, profName string) (ReplRow, error) {
	row := ReplRow{Policy: policy, Profile: profName}
	prof, err := model.Resolve(profName)
	if err != nil {
		return row, err
	}
	prof.NCL.Replication = policy
	c := harness.New(harness.Options{
		Seed: seed, NumPeers: 8, PeerMem: replPeerMem, AppCores: 10,
		WithLocalFS: true, Profile: prof, Trace: sc.Trace,
	})
	err = c.Run(func(p *simnet.Proc) error {
		var hist metrics.Histogram
		filled := make(chan struct{}, 1)
		c.AppNode.Go("app-v1", func(wp *simnet.Proc) {
			fs, err := core.NewFS(wp, c.FSOptions("repl", 0))
			if err != nil {
				return
			}
			nf, err := fs.OpenFile(wp, "wal-000", core.O_NCL|core.O_CREATE, replCapacity)
			if err != nil {
				return
			}
			rec := make([]byte, replRecBytes)
			for i := 0; i < replRecords; i++ {
				t0 := wp.Now()
				if _, err := nf.Write(wp, rec); err != nil {
					return
				}
				hist.Record(wp.Now() - t0)
			}
			filled <- struct{}{}
			wp.Sleep(24 * time.Hour)
		})
		for len(filled) == 0 {
			p.Sleep(10 * time.Millisecond)
		}
		row.WriteP50NS = hist.Percentile(0.50).Nanoseconds()
		row.WriteP99NS = hist.Percentile(0.99).Nanoseconds()

		// The registry's bill for this log: every byte the peers stopped
		// lending. The policy's MemoryFactor promises exactly this number.
		var reserved int64
		for _, pr := range c.Peers {
			reserved += replPeerMem - pr.Avail()
		}
		row.MemFactor = float64(reserved) / float64(replCapacity)

		c.CrashApp()
		p.Sleep(10 * time.Millisecond)
		c.RestartApp()
		fs2, err := core.NewFS(p, c.FSOptions("repl", 1))
		if err != nil {
			return err
		}
		start := p.Now()
		nf2, err := fs2.OpenFile(p, "wal-000", core.O_NCL, 0)
		if err != nil {
			return err
		}
		row.RecoveryNS = (p.Now() - start).Nanoseconds()
		if nf2.Size() != int64(replRecords*replRecBytes) {
			return fmt.Errorf("recovered %d bytes, want %d", nf2.Size(), replRecords*replRecBytes)
		}
		// Recovered under the policy it was written with, regardless of the
		// recovering process's own defaults.
		type hasLog interface{ Log() *ncl.Log }
		if got := nf2.(hasLog).Log().Policy().String(); got != policySpecString(policy) {
			return fmt.Errorf("recovered under %s, want %s", got, policy)
		}
		return nil
	})
	return row, err
}

// policySpecString canonicalizes a policy string through the parser.
func policySpecString(s string) string {
	spec, err := ncl.ParsePolicy(s)
	if err != nil {
		return s
	}
	return spec.String()
}
