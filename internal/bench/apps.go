package bench

import (
	"fmt"
	"time"

	"splitft/internal/apps/kvstore"
	"splitft/internal/apps/litedb"
	"splitft/internal/apps/redstore"
	"splitft/internal/core"
	"splitft/internal/harness"
	"splitft/internal/metrics"
	"splitft/internal/ncl"
	"splitft/internal/simnet"
	"splitft/internal/ycsb"
)

// ---- Application adapters ----

// kvApp adapts the RocksDB-like store.
type kvApp struct {
	c  *harness.Cluster
	fs *core.FS
	db *kvstore.DB
}

func kvDurability(cfg string) kvstore.Durability {
	switch cfg {
	case CfgWeak:
		return kvstore.Weak
	case CfgStrong:
		return kvstore.Strong
	default:
		return kvstore.SplitFT
	}
}

func newKVApp(c *harness.Cluster, p *simnet.Proc, cfg string, keys, fencing int64) (*kvApp, error) {
	fs, err := c.NewFS(p, "kvapp", fencing)
	if err != nil {
		return nil, err
	}
	dbCfg := kvstore.DefaultConfig()
	dbCfg.KVStoreCosts = c.Profile.Apps.KVStore
	dbCfg.Durability = kvDurability(cfg)
	if keys > 0 {
		// Keep the memtable well below the dataset so reads exercise the
		// sstable + cache path, as at the paper's 100M-row scale.
		mt := datasetBytes(keys) / 8
		if mt < 1<<20 {
			mt = 1 << 20
		}
		if mt > 16<<20 {
			mt = 16 << 20
		}
		dbCfg.MemtableBytes = mt
		dbCfg.WALRegion = 2*mt + 1<<20
	}
	db, err := kvstore.Open(p, fs, dbCfg)
	if err != nil {
		return nil, err
	}
	return &kvApp{c: c, fs: fs, db: db}, nil
}

func (a *kvApp) Name() string { return "kvstore" }

func (a *kvApp) Load(p *simnet.Proc, keys int64) error {
	return parallelLoad(a.c.AppNode, p, keys, 16, func(lp *simnet.Proc, key string, val []byte) error {
		return a.db.Put(lp, key, val)
	})
}

func (a *kvApp) Do(p *simnet.Proc, op ycsb.Op, val []byte) error {
	switch op.Type {
	case ycsb.Read:
		_, _, err := a.db.Get(p, op.Key)
		return err
	case ycsb.ReadModifyWrite:
		if _, _, err := a.db.Get(p, op.Key); err != nil {
			return err
		}
		return a.db.Put(p, op.Key, val)
	default:
		return a.db.Put(p, op.Key, val)
	}
}

// redApp adapts the Redis-like store.
type redApp struct {
	c     *harness.Cluster
	fs    *core.FS
	store *redstore.Store
}

func redDurability(cfg string) redstore.Durability {
	switch cfg {
	case CfgWeak:
		return redstore.Weak
	case CfgStrong:
		return redstore.Strong
	default:
		return redstore.SplitFT
	}
}

func newRedApp(c *harness.Cluster, p *simnet.Proc, cfg string, keys, fencing int64) (*redApp, error) {
	fs, err := c.NewFS(p, "redapp", fencing)
	if err != nil {
		return nil, err
	}
	sCfg := redstore.DefaultConfig()
	sCfg.RedStoreCosts = c.Profile.Apps.RedStore
	sCfg.Durability = redDurability(cfg)
	if keys > 0 {
		// Scale the AOF-rewrite trigger with the dataset so background
		// snapshots occur at simulation scale, as they would at 100M rows.
		rw := datasetBytes(keys) / 4
		if rw < 256<<10 {
			rw = 256 << 10
		}
		if rw > 8<<20 {
			rw = 8 << 20
		}
		sCfg.AOFRewriteBytes = rw
		sCfg.AOFRegion = 2*rw + 1<<20
	}
	st, err := redstore.Open(p, fs, sCfg)
	if err != nil {
		return nil, err
	}
	return &redApp{c: c, fs: fs, store: st}, nil
}

func (a *redApp) Name() string { return "redstore" }

func (a *redApp) Load(p *simnet.Proc, keys int64) error {
	return parallelLoad(a.c.AppNode, p, keys, 16, func(lp *simnet.Proc, key string, val []byte) error {
		return a.store.Set(lp, key, val)
	})
}

func (a *redApp) Do(p *simnet.Proc, op ycsb.Op, val []byte) error {
	switch op.Type {
	case ycsb.Read:
		_, _, err := a.store.Get(p, op.Key)
		return err
	case ycsb.ReadModifyWrite:
		if _, _, err := a.store.Get(p, op.Key); err != nil {
			return err
		}
		return a.store.Set(p, op.Key, val)
	default:
		return a.store.Set(p, op.Key, val)
	}
}

// liteApp adapts the SQLite-like store.
type liteApp struct {
	c  *harness.Cluster
	fs *core.FS
	db *litedb.DB
}

func liteDurability(cfg string) litedb.Durability {
	switch cfg {
	case CfgWeak:
		return litedb.Weak
	case CfgStrong:
		return litedb.Strong
	default:
		return litedb.SplitFT
	}
}

func newLiteApp(c *harness.Cluster, p *simnet.Proc, cfg string, keys int64, fencing int64) (*liteApp, error) {
	fs, err := c.NewFS(p, "liteapp", fencing)
	if err != nil {
		return nil, err
	}
	dbCfg := litedb.DefaultConfig()
	dbCfg.LiteDBCosts = c.Profile.Apps.LiteDB
	dbCfg.Durability = liteDurability(cfg)
	// Size the page table for ~2KB average occupancy per 4KB page.
	dbCfg.NPages = int(keys*int64(ycsb.KeySize+ycsb.ValueSize+4)/2048 + 64)
	db, err := litedb.Open(p, fs, dbCfg)
	if err != nil {
		return nil, err
	}
	return &liteApp{c: c, fs: fs, db: db}, nil
}

func (a *liteApp) Name() string { return "litedb" }

func (a *liteApp) Load(p *simnet.Proc, keys int64) error {
	// Single connection, exclusive mode: sequential load.
	val := make([]byte, ycsb.ValueSize)
	for i := int64(0); i < keys; i++ {
		if err := a.db.Set(p, ycsb.Key(i), val); err != nil {
			return err
		}
	}
	return nil
}

func (a *liteApp) Do(p *simnet.Proc, op ycsb.Op, val []byte) error {
	switch op.Type {
	case ycsb.Read:
		_, _, err := a.db.Get(p, op.Key)
		return err
	case ycsb.ReadModifyWrite:
		if _, _, err := a.db.Get(p, op.Key); err != nil {
			return err
		}
		return a.db.Set(p, op.Key, val)
	default:
		return a.db.Set(p, op.Key, val)
	}
}

// newApp builds an adapter by name ("kvstore", "redstore", "litedb").
func newApp(c *harness.Cluster, p *simnet.Proc, name, cfg string, keys int64) (app, error) {
	switch name {
	case "kvstore":
		return newKVApp(c, p, cfg, keys, 0)
	case "redstore":
		return newRedApp(c, p, cfg, keys, 0)
	case "litedb":
		return newLiteApp(c, p, cfg, keys, 0)
	default:
		return nil, fmt.Errorf("bench: unknown app %q", name)
	}
}

// appLoadKeys scales the row count per application (litedb is page-based
// and slower to load, as in the paper's 10M-vs-100M split).
func appLoadKeys(name string, sc Scale) int64 {
	if name == "litedb" {
		return sc.LoadKeys / 4
	}
	return sc.LoadKeys
}

// ---- Fig 9: latency vs throughput, write-only ----

// Fig9Point is one (clients, throughput, latency) sample.
type Fig9Point struct {
	Clients int
	KOps    float64
	MeanLat time.Duration
}

// Fig9Result holds one application's curves.
type Fig9Result struct {
	App    string
	Series map[string][]Fig9Point // config -> points
}

// Render formats the curves as aligned columns.
func (r Fig9Result) Render() string {
	out := fmt.Sprintf("Fig 9 (%s): latency vs throughput, write-only\n", r.App)
	var rows [][]string
	for _, cfg := range AllConfigs {
		for _, pt := range r.Series[cfg] {
			rows = append(rows, []string{cfg, fmt.Sprint(pt.Clients),
				fmt.Sprintf("%.1f", pt.KOps), fmtUS(pt.MeanLat)})
		}
	}
	return out + metrics.Table([]string{"config", "clients", "KOps/s", "mean latency (us)"}, rows)
}

// Fig9 sweeps client counts for one application in all three configs.
// litedb is measured single-threaded (as in the paper).
func Fig9(appName string, sc Scale, seed int64) (Fig9Result, error) {
	res := Fig9Result{App: appName, Series: make(map[string][]Fig9Point)}
	clientCounts := []int{1, 2, 4, 8, 12, 20, 32}
	if appName == "litedb" {
		clientCounts = []int{1}
	}
	for _, cfg := range AllConfigs {
		for _, nc := range clientCounts {
			keys := appLoadKeys(appName, sc) / 2
			c := newClusterSized(sc, seed, datasetBytes(keys))
			var pt *point
			err := c.Run(func(p *simnet.Proc) error {
				a, err := newApp(c, p, appName, cfg, keys)
				if err != nil {
					return err
				}
				if err := loadApp(c, p, a, keys); err != nil {
					return err
				}
				startServer(c, "app", a)
				spec := ycsb.Spec{Name: "write-only", UpdateProp: 1.0, Dist: ycsb.Zipfian}
				pt = runWorkload(c, p, "app", spec, keys, nc, sc, nil)
				return nil
			})
			if err != nil {
				return res, fmt.Errorf("fig9 %s/%s/%d: %w", appName, cfg, nc, err)
			}
			res.Series[cfg] = append(res.Series[cfg], Fig9Point{Clients: nc, KOps: pt.kops(), MeanLat: pt.hist.Mean()})
		}
	}
	return res, nil
}

// ---- Fig 10: YCSB ----

// Fig10Result holds one application's YCSB throughput matrix.
type Fig10Result struct {
	App       string
	Workloads []string
	KOps      map[string]map[string]float64 // config -> workload -> kops
}

// Render formats like the paper's grouped bars.
func (r Fig10Result) Render() string {
	header := append([]string{"config"}, r.Workloads...)
	var rows [][]string
	for _, cfg := range AllConfigs {
		row := []string{cfg}
		for _, w := range r.Workloads {
			row = append(row, fmt.Sprintf("%.1f", r.KOps[cfg][w]))
		}
		rows = append(rows, row)
	}
	return fmt.Sprintf("Fig 10 (%s): YCSB throughput (KOps/s)\n", r.App) + metrics.Table(header, rows)
}

// Fig10 runs YCSB A/B/C/D/F for one application in all three configs. Each
// (config, workload) point gets a freshly loaded store so every
// configuration sees identical state — in particular, the read-only
// workload C must measure the same store regardless of log durability.
func Fig10(appName string, sc Scale, seed int64) (Fig10Result, error) {
	workloads := []string{"a", "b", "c", "d", "f"}
	res := Fig10Result{App: appName, Workloads: workloads, KOps: make(map[string]map[string]float64)}
	clients := 20
	if appName == "litedb" {
		clients = 1
	}
	for _, cfg := range AllConfigs {
		res.KOps[cfg] = make(map[string]float64)
		for _, w := range workloads {
			w := w
			keys := appLoadKeys(appName, sc)
			c := newClusterSized(sc, seed, datasetBytes(keys))
			err := c.Run(func(p *simnet.Proc) error {
				a, err := newApp(c, p, appName, cfg, keys)
				if err != nil {
					return err
				}
				if err := loadApp(c, p, a, keys); err != nil {
					return err
				}
				startServer(c, "app", a)
				pt := runWorkload(c, p, "app", ycsb.Workloads[w], keys, clients, sc, nil)
				res.KOps[cfg][w] = pt.kops()
				return nil
			})
			if err != nil {
				return res, fmt.Errorf("fig10 %s/%s/%s: %w", appName, cfg, w, err)
			}
		}
	}
	return res, nil
}

// ---- Fig 12: application performance under peer failures ----

// Fig12Result is the sampled throughput timeline with the injected events.
type Fig12Result struct {
	Series []metrics.ThroughputPoint
	Events []string
}

// Render prints a sparse timeline (one row per 100ms, annotated).
func (r Fig12Result) Render() string {
	out := "Fig 12: kvstore/SplitFT throughput under peer failures (10ms samples, 100ms rows)\n"
	for _, e := range r.Events {
		out += "  event: " + e + "\n"
	}
	var rows [][]string
	for i := 0; i < len(r.Series); i += 10 {
		sum, n := 0.0, 0
		for j := i; j < i+10 && j < len(r.Series); j++ {
			sum += r.Series[j].OpsPerSec
			n++
		}
		rows = append(rows, []string{fmt.Sprintf("%.1fs", r.Series[i].At.Seconds()),
			fmt.Sprintf("%.1f", sum/float64(n)/1000)})
	}
	return out + metrics.Table([]string{"time", "KOps/s"}, rows)
}

// MinDuring returns the lowest 10ms sample rate within [from, to) — used by
// tests to verify the stall and the recovery.
func (r Fig12Result) MinDuring(from, to time.Duration) float64 {
	min := -1.0
	for _, pt := range r.Series {
		if pt.At >= from && pt.At < to {
			if min < 0 || pt.OpsPerSec < min {
				min = pt.OpsPerSec
			}
		}
	}
	return min
}

// MeanDuring averages the sample rate within [from, to).
func (r Fig12Result) MeanDuring(from, to time.Duration) float64 {
	sum, n := 0.0, 0
	for _, pt := range r.Series {
		if pt.At >= from && pt.At < to {
			sum += pt.OpsPerSec
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Fig12 runs the write-only workload on kvstore/SplitFT, crashes two of the
// WAL's log peers simultaneously mid-run (writes must stall until a
// replacement catches up, ~100ms) and a third one later (no availability
// impact), sampling real-time throughput every 10ms.
func Fig12(sc Scale, seed int64) (Fig12Result, error) {
	res := Fig12Result{}
	c := newCluster(sc, seed)
	sampler := metrics.NewThroughputSampler(10 * time.Millisecond)
	total := sc.Warmup + sc.RunDur*3
	err := c.Run(func(p *simnet.Proc) error {
		keys := sc.LoadKeys / 4
		// Default (4 MiB) memtable: the dataset is update-heavy and small,
		// and the figure is about peer failures, not compaction stalls.
		a, err := newKVApp(c, p, CfgSplitFT, 0, 0)
		if err != nil {
			return err
		}
		if err := loadApp(c, p, a, keys); err != nil {
			return err
		}
		startServer(c, "kv", a)

		// Injector: crash 2 current WAL peers at 40% of the run, 1 at 75%.
		p.Go("injector", func(ip *simnet.Proc) {
			start := ip.Now()
			walPeers := func() []string {
				type hasLog interface{ Log() *ncl.Log }
				if hl, ok := a.db.WAL().(hasLog); ok {
					return hl.Log().LivePeers()
				}
				return nil
			}
			ip.Sleep(total * 4 / 10)
			peers := walPeers()
			if len(peers) >= 2 {
				c.Sim.Node(peers[0]).Crash()
				c.Sim.Node(peers[1]).Crash()
				res.Events = append(res.Events, fmt.Sprintf("%.2fs: peers %s and %s crashed (2 > f)",
					(ip.Now()-start).Seconds(), peers[0], peers[1]))
			}
			ip.Sleep(total * 35 / 100)
			peers = walPeers()
			if len(peers) >= 1 {
				c.Sim.Node(peers[0]).Crash()
				res.Events = append(res.Events, fmt.Sprintf("%.2fs: peer %s crashed (1 <= f)",
					(ip.Now()-start).Seconds(), peers[0]))
			}
		})

		longScale := sc
		longScale.RunDur = total - sc.Warmup
		spec := ycsb.Spec{Name: "write-only", UpdateProp: 1.0, Dist: ycsb.Zipfian}
		runWorkload(c, p, "kv", spec, keys, sc.Clients, longScale, sampler)
		return nil
	})
	if err != nil {
		return res, err
	}
	res.Series = sampler.Series()
	return res, nil
}
