package ycsb

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKeyShape(t *testing.T) {
	k := Key(42)
	if len(k) != KeySize {
		t.Fatalf("key %q has length %d, want %d", k, len(k), KeySize)
	}
	if Key(1) == Key(2) {
		t.Fatal("keys collide")
	}
}

func TestValueShape(t *testing.T) {
	g := NewGenerator(WorkloadA, 1000, 1)
	v1, v2 := g.Value(), g.Value()
	if len(v1) != ValueSize || len(v2) != ValueSize {
		t.Fatalf("value sizes %d/%d", len(v1), len(v2))
	}
	if string(v1) == string(v2) {
		t.Fatal("values identical")
	}
}

func TestMixProportions(t *testing.T) {
	for name, spec := range Workloads {
		g := NewGenerator(spec, 10000, 7)
		counts := map[OpType]int{}
		const n = 50000
		for i := 0; i < n; i++ {
			counts[g.Next().Type]++
		}
		check := func(op OpType, want float64) {
			got := float64(counts[op]) / n
			if math.Abs(got-want) > 0.02 {
				t.Errorf("workload %s: %v fraction = %.3f, want %.2f", name, op, got, want)
			}
		}
		check(Read, spec.ReadProp)
		check(Update, spec.UpdateProp)
		check(Insert, spec.InsertProp)
		check(ReadModifyWrite, spec.RMWProp)
	}
}

func TestZipfianSkew(t *testing.T) {
	g := NewGenerator(WorkloadC, 100000, 3)
	counts := map[string]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	// Hottest 1% of touched keys should absorb a large share of traffic.
	var freqs []int
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sortDesc(freqs)
	hot := 0
	for i := 0; i < len(freqs)/100+1; i++ {
		hot += freqs[i]
	}
	if share := float64(hot) / n; share < 0.2 {
		t.Errorf("top-1%% share = %.3f, want zipfian skew (> 0.2)", share)
	}
	// And a uniform workload should NOT be this skewed.
	u := NewGenerator(Spec{Name: "u", ReadProp: 1, Dist: Uniform}, 100000, 3)
	ucounts := map[string]int{}
	for i := 0; i < n; i++ {
		ucounts[u.Next().Key]++
	}
	var ufreqs []int
	for _, c := range ucounts {
		ufreqs = append(ufreqs, c)
	}
	sortDesc(ufreqs)
	uhot := 0
	for i := 0; i < len(ufreqs)/100+1; i++ {
		uhot += ufreqs[i]
	}
	if ushare := float64(uhot) / n; ushare > 0.1 {
		t.Errorf("uniform top-1%% share = %.3f, too skewed", ushare)
	}
}

func TestLatestFavorsRecentKeys(t *testing.T) {
	g := NewGenerator(WorkloadD, 10000, 5)
	recent := 0
	total := 0
	for i := 0; i < 20000; i++ {
		op := g.Next()
		if op.Type != Read {
			continue
		}
		var idx int64
		fmt.Sscanf(op.Key, "user%d", &idx)
		total++
		if idx >= g.records-g.records/10 {
			recent++
		}
	}
	if share := float64(recent) / float64(total); share < 0.5 {
		t.Errorf("latest: newest-10%% share = %.3f, want > 0.5", share)
	}
}

func TestInsertsGrowKeyspace(t *testing.T) {
	g := NewGenerator(WorkloadD, 1000, 9)
	before := g.records
	inserts := 0
	for i := 0; i < 5000; i++ {
		if g.Next().Type == Insert {
			inserts++
		}
	}
	if g.records != before+int64(inserts) {
		t.Fatalf("records = %d, want %d", g.records, before+int64(inserts))
	}
	if inserts == 0 {
		t.Fatal("no inserts in workload D")
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(WorkloadA, 5000, 42)
	b := NewGenerator(WorkloadA, 5000, 42)
	for i := 0; i < 1000; i++ {
		oa, ob := a.Next(), b.Next()
		if oa != ob {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, oa, ob)
		}
	}
}

// Property: every generated key is within the (current) keyspace and well
// formed.
func TestQuickKeysInRange(t *testing.T) {
	f := func(seed int64, recs uint16) bool {
		records := int64(recs)%5000 + 10
		g := NewGenerator(WorkloadA, records, seed)
		for i := 0; i < 200; i++ {
			op := g.Next()
			var idx int64
			if _, err := fmt.Sscanf(op.Key, "user%d", &idx); err != nil {
				return false
			}
			if idx < 0 || idx >= g.records {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func sortDesc(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] > v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestKeyFixedWidthFormat(t *testing.T) {
	for _, i := range []int64{0, 1, 9, 10, 12345, 99999999, 1<<40 + 7} {
		got := Key(i)
		want := fmt.Sprintf("user%020d", i)
		if got != want {
			t.Errorf("Key(%d) = %q, want %q", i, got, want)
		}
		if len(got) != KeySize {
			t.Errorf("Key(%d) length %d, want %d", i, len(got), KeySize)
		}
	}
}

// TestArrivalsMeanRate checks the Poisson arrival generator: over many draws
// the mean inter-arrival gap must converge to 1/rate, every gap must be
// non-negative, and the stream must be deterministic per seed.
func TestArrivalsMeanRate(t *testing.T) {
	const rate = 20.0 // ops/s
	a := NewArrivals(rate, 42)
	const n = 200000
	var sum time.Duration
	for i := 0; i < n; i++ {
		d := a.Next()
		if d < 0 {
			t.Fatalf("draw %d: negative gap %v", i, d)
		}
		sum += d
	}
	mean := sum.Seconds() / n
	want := 1 / rate
	if mean < want*0.98 || mean > want*1.02 {
		t.Errorf("mean gap = %.4fs, want %.4fs +-2%%", mean, want)
	}

	b1, b2 := NewArrivals(rate, 7), NewArrivals(rate, 7)
	for i := 0; i < 1000; i++ {
		if g1, g2 := b1.Next(), b2.Next(); g1 != g2 {
			t.Fatalf("draw %d: same seed diverged: %v vs %v", i, g1, g2)
		}
	}
}
