// Package ycsb generates YCSB workloads (Cooper et al., SoCC'10) for the
// application benchmarks, matching the paper's setup (§5): 24-byte keys,
// 100-byte values, workloads A/B/C/D/F, zipfian request distribution with
// the standard 0.99 constant (scrambled, as in the reference
// implementation), and a "latest" distribution for workload D.
package ycsb

import (
	"hash/fnv"
	"math"
	"math/rand"
	"time"
)

// OpType is a YCSB operation.
type OpType int

const (
	Read OpType = iota
	Update
	Insert
	ReadModifyWrite
)

func (o OpType) String() string {
	switch o {
	case Read:
		return "read"
	case Update:
		return "update"
	case Insert:
		return "insert"
	default:
		return "rmw"
	}
}

// Distribution selects how keys are drawn.
type Distribution int

const (
	Zipfian Distribution = iota
	Latest
	Uniform
)

// Spec describes one workload's operation mix.
type Spec struct {
	Name       string
	ReadProp   float64
	UpdateProp float64
	InsertProp float64
	RMWProp    float64
	Dist       Distribution
}

// The standard workloads the paper evaluates (A, B, C, D, F; E needs scans,
// which the paper also omits).
var (
	WorkloadA = Spec{Name: "a", ReadProp: 0.5, UpdateProp: 0.5, Dist: Zipfian}
	WorkloadB = Spec{Name: "b", ReadProp: 0.95, UpdateProp: 0.05, Dist: Zipfian}
	WorkloadC = Spec{Name: "c", ReadProp: 1.0, Dist: Zipfian}
	WorkloadD = Spec{Name: "d", ReadProp: 0.95, InsertProp: 0.05, Dist: Latest}
	WorkloadF = Spec{Name: "f", ReadProp: 0.5, RMWProp: 0.5, Dist: Zipfian}
)

// Workloads indexes the standard specs by name.
var Workloads = map[string]Spec{
	"a": WorkloadA, "b": WorkloadB, "c": WorkloadC, "d": WorkloadD, "f": WorkloadF,
}

// Paper-standard record shape (§5): 24-byte keys, 100-byte values.
const (
	KeySize   = 24
	ValueSize = 100
)

// Key renders record number i as a fixed-width 24-byte key
// ("user" + 20 zero-padded digits). Hand-rolled rather than fmt.Sprintf:
// key generation runs once per op on the benchmark hot path, and this form
// costs exactly the one unavoidable string allocation.
func Key(i int64) string {
	var b [KeySize]byte
	b[0], b[1], b[2], b[3] = 'u', 's', 'e', 'r'
	for j := KeySize - 1; j >= 4; j-- {
		b[j] = byte('0' + i%10)
		i /= 10
	}
	return string(b[:])
}

// Op is one generated operation.
type Op struct {
	Type OpType
	Key  string
}

// Generator produces a deterministic operation stream for one client.
type Generator struct {
	spec    Spec
	rng     *rand.Rand
	records int64
	zip     *zipfGen
	value   []byte
}

// NewGenerator creates a generator over an initial keyspace of records
// loaded rows. Inserts grow the keyspace.
func NewGenerator(spec Spec, records int64, seed int64) *Generator {
	g := &Generator{
		spec:    spec,
		rng:     rand.New(rand.NewSource(seed)),
		records: records,
		value:   make([]byte, ValueSize),
	}
	if spec.Dist != Uniform {
		g.zip = newZipf(records)
	}
	for i := range g.value {
		g.value[i] = byte('a' + i%26)
	}
	return g
}

// Value returns a fresh 100-byte value (contents vary per call).
func (g *Generator) Value() []byte {
	v := make([]byte, ValueSize)
	copy(v, g.value)
	// Cheap per-call variation so stores can't dedupe.
	n := g.rng.Uint64()
	for i := 0; i < 8; i++ {
		v[i] = byte(n >> (8 * i))
	}
	return v
}

// Next draws the next operation.
func (g *Generator) Next() Op {
	r := g.rng.Float64()
	switch {
	case r < g.spec.ReadProp:
		return Op{Type: Read, Key: g.chooseKey()}
	case r < g.spec.ReadProp+g.spec.UpdateProp:
		return Op{Type: Update, Key: g.chooseKey()}
	case r < g.spec.ReadProp+g.spec.UpdateProp+g.spec.RMWProp:
		return Op{Type: ReadModifyWrite, Key: g.chooseKey()}
	default:
		g.records++
		return Op{Type: Insert, Key: Key(g.records - 1)}
	}
}

func (g *Generator) chooseKey() string {
	switch g.spec.Dist {
	case Uniform:
		return Key(g.rng.Int63n(g.records))
	case Latest:
		// Most traffic to the most recent records.
		off := g.zip.next(g.rng, g.records)
		return Key(g.records - 1 - off)
	default:
		// Scrambled zipfian: hot ranks scattered across the keyspace.
		rank := g.zip.next(g.rng, g.records)
		h := fnv.New64a()
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(rank >> (8 * i))
		}
		h.Write(b[:])
		return Key(int64(h.Sum64() % uint64(g.records)))
	}
}

// Arrivals is an open-loop arrival-time generator: a Poisson process at a
// fixed mean rate, drawn on the virtual clock. Open-loop clients model
// independent users — an operation's start time does not wait for the
// previous operation to finish, so queueing delay shows up in latency
// instead of silently throttling offered load (the coordinated-omission
// trap of closed-loop benchmarks).
type Arrivals struct {
	rng  *rand.Rand
	mean float64 // mean inter-arrival gap in nanoseconds
}

// NewArrivals creates a Poisson arrival generator with the given rate in
// operations per second.
func NewArrivals(rate float64, seed int64) *Arrivals {
	return &Arrivals{rng: rand.New(rand.NewSource(seed)), mean: 1e9 / rate}
}

// Next draws the next inter-arrival gap (exponentially distributed).
func (a *Arrivals) Next() time.Duration {
	return time.Duration(a.rng.ExpFloat64() * a.mean)
}

// zipfGen is the YCSB incremental zipfian generator (theta = 0.99) with
// support for a growing item count.
type zipfGen struct {
	items        int64
	theta        float64
	zetan, zeta2 float64
	alpha, eta   float64
	countForZeta int64
}

const zipfTheta = 0.99

func newZipf(items int64) *zipfGen {
	z := &zipfGen{items: items, theta: zipfTheta}
	z.zeta2 = zetaStatic(2, zipfTheta)
	z.zetan = zetaStatic(items, zipfTheta)
	z.countForZeta = items
	z.computeParams()
	return z
}

func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfGen) computeParams() {
	z.alpha = 1 / (1 - z.theta)
	z.eta = (1 - math.Pow(2/float64(z.items), 1-z.theta)) / (1 - z.zeta2/z.zetan)
}

// next draws a rank in [0, items). If items grew, zeta is extended
// incrementally (the standard YCSB trick).
func (z *zipfGen) next(rng *rand.Rand, items int64) int64 {
	if items > z.countForZeta {
		for i := z.countForZeta + 1; i <= items; i++ {
			z.zetan += 1 / math.Pow(float64(i), z.theta)
		}
		z.countForZeta = items
		z.items = items
		z.computeParams()
	}
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
