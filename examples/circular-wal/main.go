// circular-wal: the SQLite-style store whose write-ahead log is reused as a
// circular buffer (overwrite-based reclaim, Table 2). This is the case that
// forces NCL's recovery to copy whole regions with an atomic mr-map switch
// rather than shipping log tails (Fig 7ii).
//
// The demo runs transactions until the WAL wraps several times, crashes the
// application mid-generation, recovers on a "different machine", and
// verifies every acknowledged transaction.
//
// Run with: go run ./examples/circular-wal
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"splitft/internal/apps/litedb"
	"splitft/internal/harness"
	"splitft/internal/model"
	"splitft/internal/simnet"
	"splitft/internal/trace"
)

func main() {
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
	flag.Parse()
	col := trace.New()
	cluster := harness.New(harness.Options{Seed: 23, NumPeers: 4, Profile: model.Baseline(), Trace: col})
	cfg := litedb.DefaultConfig()
	cfg.LiteDBCosts = cluster.Profile.Apps.LiteDB
	cfg.Durability = litedb.SplitFT
	cfg.NPages = 256
	cfg.WALBytes = 256 << 10 // ~62 frames: wraps quickly

	err := cluster.Run(func(p *simnet.Proc) error {
		acked := 0
		cluster.AppNode.Go("app-v1", func(ap *simnet.Proc) {
			fs, err := cluster.NewFS(ap, "lite-demo", 0)
			if err != nil {
				return
			}
			db, err := litedb.Open(ap, fs, cfg)
			if err != nil {
				return
			}
			for i := 0; ; i++ {
				key := fmt.Sprintf("row%04d", i%300)
				val := []byte(fmt.Sprintf("value-%06d", i))
				if err := db.Set(ap, key, val); err != nil {
					log.Fatalf("txn %d: %v", i, err)
				}
				acked = i + 1
				if i%100 == 99 {
					fmt.Printf("  %4d txns committed; WAL generation (salt) %d, checkpoints %d\n",
						i+1, i/100+1, db.Checkpoints)
				}
				if i == 399 {
					break
				}
			}
			ap.Sleep(24 * time.Hour)
		})
		p.Sleep(2 * time.Second)

		fmt.Println("\n*** crashing the application mid-generation ***")
		cluster.CrashApp()
		p.Sleep(10 * time.Millisecond)
		cluster.RestartApp()

		fs2, err := cluster.NewFS(p, "lite-demo", 1)
		if err != nil {
			return err
		}
		start := p.Now()
		db2, err := litedb.Recover(p, fs2, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("recovered in %v (db file + newest WAL generation replayed, then checkpointed)\n",
			(p.Now() - start).Round(time.Millisecond))

		// Verify: each of the 300 rows must hold the value of its LAST
		// acknowledged transaction.
		bad := 0
		for r := 0; r < 300; r++ {
			last := -1
			for i := r; i < acked; i += 300 {
				last = i
			}
			if last < 0 {
				continue
			}
			want := fmt.Sprintf("value-%06d", last)
			got, ok, _ := db2.Get(p, fmt.Sprintf("row%04d", r))
			if !ok || string(got) != want {
				bad++
			}
		}
		if bad > 0 {
			return fmt.Errorf("%d rows lost or stale after recovery", bad)
		}
		fmt.Printf("all %d acknowledged transactions intact across %d WAL wrap-arounds\n",
			acked, acked/62)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if *traceOut != "" {
		if err := trace.WriteChromeFile(*traceOut, col.Spans()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s (%d spans)\n", *traceOut, col.Len())
	}
}
