// kvstore-ycsb: the RocksDB-style LSM store under a YCSB workload in the
// three configurations the paper compares — weak-app DFT, strong-app DFT,
// and SplitFT — followed by a crash-recovery check showing where each
// configuration lands on the guarantees/performance trade-off.
//
// Run with: go run ./examples/kvstore-ycsb
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"splitft/internal/apps/kvstore"
	"splitft/internal/harness"
	"splitft/internal/model"
	"splitft/internal/simnet"
	"splitft/internal/trace"
	"splitft/internal/ycsb"
)

const (
	loadKeys = 20000
	runFor   = 300 * time.Millisecond
	threads  = 16
)

func main() {
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of all three runs to this file")
	flag.Parse()
	var col *trace.Collector
	if *traceOut != "" {
		col = trace.New()
	}
	fmt.Printf("%-10s %12s %16s %16s\n", "config", "YCSB-A KOps/s", "acked pre-crash", "survived crash")
	for _, d := range []kvstore.Durability{kvstore.Weak, kvstore.Strong, kvstore.SplitFT} {
		kops, acked, survived, err := runConfig(d, col)
		if err != nil {
			log.Fatalf("%s: %v", d, err)
		}
		fmt.Printf("%-10s %12.1f %16d %16d\n", d, kops, acked, survived)
	}
	fmt.Println("\nweak is fast but loses acknowledged data; strong loses nothing but is slow;")
	fmt.Println("SplitFT keeps weak-mode speed with strong-mode guarantees.")
	if *traceOut != "" {
		if err := trace.WriteChromeFile(*traceOut, col.Spans()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s (%d spans; one pid per configuration)\n", *traceOut, col.Len())
	}
}

func runConfig(d kvstore.Durability, col *trace.Collector) (kops float64, acked, survived int, err error) {
	c := harness.New(harness.Options{Seed: 7, NumPeers: 4, Profile: model.Baseline(), Trace: col})
	err = c.Run(func(p *simnet.Proc) error {
		var db *kvstore.DB
		booted := make(chan struct{}, 1)
		c.AppNode.Go("app-v1", func(ap *simnet.Proc) {
			fs, err := c.NewFS(ap, "kv-example", 0)
			if err != nil {
				return
			}
			cfg := kvstore.DefaultConfig()
			cfg.KVStoreCosts = c.Profile.Apps.KVStore
			cfg.Durability = d
			cfg.MemtableBytes = 1 << 20
			cfg.WALRegion = 3 << 20
			db, err = kvstore.Open(ap, fs, cfg)
			if err != nil {
				return
			}
			val := make([]byte, ycsb.ValueSize)
			for i := int64(0); i < loadKeys; i++ {
				db.Put(ap, ycsb.Key(i), val)
			}
			booted <- struct{}{}
			ap.Sleep(24 * time.Hour)
		})
		for len(booted) == 0 {
			p.Sleep(50 * time.Millisecond)
		}

		// Drive YCSB-A from concurrent worker procs on the app node,
		// remembering exactly which keys were acknowledged as updated.
		var wg simnet.WaitGroup
		wg.Add(threads)
		ops := 0
		updated := map[string]bool{}
		end := p.Now() + runFor
		for t := 0; t < threads; t++ {
			g := ycsb.NewGenerator(ycsb.WorkloadA, loadKeys, int64(t)+1)
			p.GoOn(c.AppNode, fmt.Sprintf("worker%d", t), func(wp *simnet.Proc) {
				defer wg.Done(wp)
				for wp.Now() < end {
					op := g.Next()
					switch op.Type {
					case ycsb.Read:
						db.Get(wp, op.Key)
						ops++
					default:
						if db.Put(wp, op.Key, g.Value()) == nil {
							ops++
							updated[op.Key] = true
						}
					}
				}
			})
		}
		wg.Wait(p)
		kops = float64(ops) / runFor.Seconds() / 1000

		// Crash and recover; count surviving acknowledged updates.
		c.CrashApp()
		p.Sleep(10 * time.Millisecond)
		c.RestartApp()
		fs2, err := c.NewFS(p, "kv-example", 1)
		if err != nil {
			return err
		}
		cfg := kvstore.DefaultConfig()
		cfg.KVStoreCosts = c.Profile.Apps.KVStore
		cfg.Durability = d
		cfg.MemtableBytes = 1 << 20
		cfg.WALRegion = 3 << 20
		db2, err := kvstore.Recover(p, fs2, cfg)
		if err != nil {
			return err
		}
		// Every loaded key must exist; updated values may be lost in weak.
		missing := 0
		for i := int64(0); i < loadKeys; i += 97 {
			if _, ok, _ := db2.Get(p, ycsb.Key(i)); !ok {
				missing++
			}
		}
		// An updated key survives if its value is no longer the loaded
		// zero-value (generator values always start with a non-zero byte).
		for key := range updated {
			v, ok, _ := db2.Get(p, key)
			if ok && len(v) == ycsb.ValueSize && !allZero(v[:8]) {
				survived++
			}
		}
		acked = len(updated)
		if missing > 0 {
			return fmt.Errorf("%d loaded keys missing after recovery", missing)
		}
		return nil
	})
	return kops, acked, survived, err
}

func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}
