// Quickstart: the SplitFT public API in one file.
//
// It builds the simulated testbed (controller, dfs, RDMA fabric, log
// peers), opens one file with O_NCL and one without, writes to both,
// crashes the application server, and recovers — showing that every
// acknowledged NCL write survives while the latency stayed microseconds.
//
// Run with: go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"

	"splitft/internal/core"
	"splitft/internal/harness"
	"splitft/internal/model"
	"splitft/internal/simnet"
	"splitft/internal/trace"
)

func main() {
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
	flag.Parse()
	// The hardware cost model comes from a named profile; model.Baseline()
	// is the paper-faithful CX4RoCE25 testbed (try model.CX6RoCE100()).
	// The collector records every layer's spans on the virtual clock.
	col := trace.New()
	cluster := harness.New(harness.Options{Seed: 42, NumPeers: 4, Profile: model.Baseline(), Trace: col})

	err := cluster.Run(func(p *simnet.Proc) error {
		// --- first application instance ---
		var acked int
		cluster.AppNode.Go("app-v1", func(ap *simnet.Proc) {
			fs, err := cluster.NewFS(ap, "quickstart", 0) // fencing 0: first boot
			if err != nil {
				return
			}
			// A write-ahead log: small synchronous writes -> O_NCL routes it
			// to near-compute logs. Every Write returns only after a
			// majority of log peers holds it.
			wal, err := fs.OpenFile(ap, "app.wal", core.O_NCL|core.O_CREATE, 1<<20)
			if err != nil {
				return
			}
			// A checkpoint: one large background write -> straight to the dfs.
			ckpt, _ := fs.OpenFile(ap, "/data/checkpoint", core.O_CREATE, 0)

			start := ap.Now()
			for i := 0; i < 1000; i++ {
				rec := []byte(fmt.Sprintf("update-%04d;", i))
				if _, err := wal.Write(ap, rec); err != nil {
					return
				}
				acked++
			}
			fmt.Printf("1000 NCL log writes acknowledged, avg %v each (majority-replicated)\n",
				(ap.Now()-start)/1000)

			ckpt.Write(ap, make([]byte, 4<<20))
			ckpt.Sync(ap)
			fmt.Println("4MB checkpoint written durably to the dfs")
			ap.Sleep(1e18) // hold state until the crash
		})

		p.Sleep(500 * 1e6) // 500ms
		fmt.Println("\n*** crashing the application server ***")
		cluster.CrashApp()
		p.Sleep(10 * 1e6)
		cluster.RestartApp()

		// --- recovered instance (possibly a different machine) ---
		fs2, err := cluster.NewFS(p, "quickstart", 1) // fencing 1: restart
		if err != nil {
			return err
		}
		names, _ := fs2.ListNCL(p)
		fmt.Printf("ncl files recorded in the ap-map: %v\n", names)

		mark := col.Len()
		wal2, err := fs2.OpenFile(p, "app.wal", core.O_NCL, 0) // recovery path
		if err != nil {
			return err
		}
		spans := col.Since(mark)
		fmt.Printf("recovered %d bytes from log peers in %v "+
			"(get peer %v, connect %v, rdma read %v, sync peer %v)\n",
			wal2.Size(), trace.First(spans, "ncl", "recover").Dur().Round(1e5),
			trace.Sum(spans, "ncl", "recover.getpeer").Round(1e5),
			trace.Sum(spans, "ncl", "recover.connect").Round(1e5),
			trace.Sum(spans, "ncl", "recover.rdmaread").Round(1e5),
			trace.Sum(spans, "ncl", "recover.syncpeer").Round(1e5))

		buf := make([]byte, wal2.Size())
		wal2.Pread(p, buf, 0)
		got := 0
		for i := 0; i+12 <= len(buf); i += 12 {
			got++
		}
		fmt.Printf("acknowledged before crash: %d records; recovered: %d records\n", acked, got)
		if got < acked {
			return fmt.Errorf("LOST DATA: %d < %d", got, acked)
		}
		fmt.Println("no acknowledged write was lost — strong guarantees at weak-mode latency")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if *traceOut != "" {
		if err := trace.WriteChromeFile(*traceOut, col.Spans()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s (%d spans)\n", *traceOut, col.Len())
	}
}
