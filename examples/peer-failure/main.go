// peer-failure: NCL's failure handling live — a log keeps accepting writes
// through a single peer crash (background replacement), stalls briefly when
// two peers die at once (> f), and treats peer-initiated memory revocation
// exactly like a failure. Mirrors §5.4.3 / Fig 12.
//
// Run with: go run ./examples/peer-failure
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"splitft/internal/core"
	"splitft/internal/harness"
	"splitft/internal/model"
	"splitft/internal/ncl"
	"splitft/internal/simnet"
	"splitft/internal/trace"
)

func main() {
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
	flag.Parse()
	col := trace.New()
	cluster := harness.New(harness.Options{Seed: 11, NumPeers: 6, Profile: model.Baseline(), Trace: col})
	err := cluster.Run(func(p *simnet.Proc) error {
		fs, err := cluster.NewFS(p, "peer-demo", 0)
		if err != nil {
			return err
		}
		f, err := fs.OpenFile(p, "demo.log", core.O_NCL|core.O_CREATE, 8<<20)
		if err != nil {
			return err
		}
		lg := f.(interface{ Log() *ncl.Log }).Log()

		write := func(n int) time.Duration {
			start := p.Now()
			for i := 0; i < n; i++ {
				if _, err := f.Write(p, make([]byte, 128)); err != nil {
					log.Fatalf("write: %v", err)
				}
			}
			return (p.Now() - start) / time.Duration(n)
		}

		fmt.Printf("members: %v\n", lg.LivePeers())
		fmt.Printf("healthy: 128B writes at %v each\n\n", write(2000))

		// One peer crash: within the failure budget, writes keep flowing on
		// the remaining majority while the repair proc swaps in a new peer.
		victim := lg.LivePeers()[0]
		fmt.Printf("*** crashing log peer %s (1 <= f) ***\n", victim)
		mark := col.Len()
		cluster.Sim.Node(victim).Crash()
		lat := write(2000)
		p.Sleep(200 * time.Millisecond) // let the background replacement finish
		fmt.Printf("writes continued at %v each; members now: %v (replacements: %d)\n",
			lat, lg.LivePeers(), lg.Replacements)
		spans := col.Since(mark)
		fmt.Printf("replacement breakdown: get peer %v, connect %v, catch up %v, ap-map %v\n\n",
			trace.Sum(spans, "ncl", "replace.getpeer").Round(time.Microsecond),
			trace.Sum(spans, "ncl", "replace.connect").Round(time.Microsecond),
			trace.Sum(spans, "ncl", "replace.catchup").Round(time.Microsecond),
			trace.Sum(spans, "ncl", "replace.apmap").Round(time.Microsecond))

		// Two simultaneous crashes: beyond the budget — writes stall until a
		// replacement catches up, then resume. No data is lost either way.
		m := lg.LivePeers()
		fmt.Printf("*** crashing peers %s and %s simultaneously (2 > f) ***\n", m[0], m[1])
		cluster.Sim.Node(m[0]).Crash()
		cluster.Sim.Node(m[1]).Crash()
		start := p.Now()
		if _, err := f.Write(p, make([]byte, 128)); err != nil {
			return err
		}
		fmt.Printf("first write after double crash took %v (stalled for the catch-up)\n",
			(p.Now() - start).Round(time.Microsecond))
		p.Sleep(300 * time.Millisecond)
		fmt.Printf("members now: %v (replacements: %d)\n\n", lg.LivePeers(), lg.Replacements)

		// Bring the earlier casualties back online (restarted peers have
		// empty mr-maps but re-register as fresh pool members).
		for _, name := range []string{"peer0", m[0], m[1]} {
			if err := cluster.RestartPeer(p, name); err != nil {
				return err
			}
		}
		fmt.Printf("restarted peers rejoin the pool: %s, %s, %s\n\n", "peer0", m[0], m[1])

		// Memory revocation: a peer reclaims its region locally; the app
		// sees a remote-access error and treats it as a peer failure.
		victim = lg.LivePeers()[1]
		fmt.Printf("*** peer %s revokes its memory (local, instantaneous) ***\n", victim)
		cluster.Peers[victim].Revoke(p, "peer-demo", "demo.log")
		write(2000)
		// The pool is small and recently crashed peers stay on the suspect
		// list for a cooldown; wait it out so the replacement can land.
		p.Sleep(2500 * time.Millisecond)
		fmt.Printf("writes continued; members now: %v (replacements: %d)\n", lg.LivePeers(), lg.Replacements)
		fmt.Printf("\ntotal records: %d, log length: %d bytes, epoch: %d\n",
			lg.Records, lg.Length(), lg.Epoch())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if *traceOut != "" {
		if err := trace.WriteChromeFile(*traceOut, col.Spans()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s (%d spans)\n", *traceOut, col.Len())
	}
}
