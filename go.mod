module splitft

go 1.22
