// Command splitft-check model-checks NCL's replication and recovery
// protocols (§4.6 of the paper). It explores every interleaving of write
// issuing, RDMA delivery, peer crashes/restarts, peer replacement,
// application crashes, and recovery with adversarial read quorums, within
// the given bounds, asserting that all acknowledged writes are recovered in
// order.
//
// With -mutation it seeds one of the paper's deliberate protocol bugs and
// verifies that the checker flags it, printing the violating trace.
//
// Usage:
//
//	splitft-check [-writes N] [-peer-crashes N] [-app-crashes N]
//	              [-replacements N] [-f N]
//	              [-mutation none|seq-before-data|swap-before-catchup|no-recovery-catchup]
//	splitft-check -all-mutations
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"splitft/internal/modelcheck"
)

func main() {
	var (
		writes   = flag.Int("writes", 3, "max writes issued")
		peerCr   = flag.Int("peer-crashes", 2, "max peer crashes")
		appCr    = flag.Int("app-crashes", 2, "max application crashes")
		repl     = flag.Int("replacements", 2, "max peer replacements")
		f        = flag.Int("f", 1, "failure budget (2f+1 peers)")
		mutation = flag.String("mutation", "none", "seeded bug: none|seq-before-data|swap-before-catchup|no-recovery-catchup")
		allMuts  = flag.Bool("all-mutations", false, "check the correct protocol and all seeded bugs")
	)
	flag.Parse()

	cfg := modelcheck.Config{
		F:               *f,
		MaxWrites:       *writes,
		MaxPeerCrashes:  *peerCr,
		MaxAppCrashes:   *appCr,
		MaxReplacements: *repl,
	}

	muts := map[string]modelcheck.Mutation{
		"none":                modelcheck.MutNone,
		"seq-before-data":     modelcheck.MutSeqBeforeData,
		"swap-before-catchup": modelcheck.MutSwapBeforeCatchup,
		"no-recovery-catchup": modelcheck.MutNoRecoveryCatchup,
	}

	runOne := func(m modelcheck.Mutation) bool {
		c := cfg
		c.Mutation = m
		start := time.Now()
		res := modelcheck.Check(c)
		elapsed := time.Since(start).Round(time.Millisecond)
		fmt.Printf("mutation=%-22s states=%-9d time=%-8v ", m, res.States, elapsed)
		if res.Violation == nil {
			fmt.Println("no violations")
			return false
		}
		fmt.Printf("VIOLATION: %s\n", res.Violation.Kind)
		fmt.Println("  trace:")
		for _, step := range res.Violation.Trace {
			fmt.Printf("    %s\n", step)
		}
		return true
	}

	if *allMuts {
		ok := true
		if runOne(modelcheck.MutNone) {
			fmt.Println("FAIL: the correct protocol was flagged")
			ok = false
		}
		for _, name := range []string{"seq-before-data", "swap-before-catchup", "no-recovery-catchup"} {
			if !runOne(muts[name]) {
				fmt.Printf("FAIL: seeded bug %s was not caught\n", name)
				ok = false
			}
		}
		if !ok {
			os.Exit(1)
		}
		fmt.Println("all checks behaved as expected")
		return
	}

	m, known := muts[*mutation]
	if !known {
		fmt.Fprintf(os.Stderr, "unknown mutation %q\n", *mutation)
		os.Exit(2)
	}
	violated := runOne(m)
	if (m == modelcheck.MutNone) == violated {
		os.Exit(1)
	}
}
