// Command splitft-bench regenerates the paper's tables and figures on the
// simulated testbed. Each experiment prints rows shaped like the paper's;
// EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Usage:
//
//	splitft-bench [flags] <experiment> [<experiment>...]
//	splitft-bench all
//
// Experiments: table1 table2 fig1 fig1d fig8 fig9 fig10 fig11a fig11b
// table3 fig12 ablate-repl ablate-split ablate-nolog
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"splitft/internal/bench"
)

var experimentOrder = []string{
	"table1", "table2", "fig1", "fig1d", "fig8", "fig9", "fig10",
	"fig11a", "fig11b", "table3", "fig12", "ablate-repl", "ablate-split", "ablate-nolog",
}

func main() {
	var (
		quick   = flag.Bool("quick", false, "use the reduced QuickScale (seconds per experiment)")
		keys    = flag.Int64("keys", 0, "override row count for kvstore/redstore loads")
		dur     = flag.Duration("dur", 0, "override measured window per data point")
		clients = flag.Int("clients", 0, "override client count for fixed-client experiments")
		logMB   = flag.Int("logmb", 0, "override recovery-log size in MiB (paper: 60)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		apps    = flag.String("apps", "kvstore,redstore,litedb", "comma-separated app list for fig1/fig9/fig10")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintf(os.Stderr, "usage: splitft-bench [flags] <experiment...|all>\nexperiments: %v\n", experimentOrder)
		os.Exit(2)
	}

	sc := bench.DefaultScale()
	if *quick {
		sc = bench.QuickScale()
	}
	if *keys > 0 {
		sc.LoadKeys = *keys
	}
	if *dur > 0 {
		sc.RunDur = *dur
	}
	if *clients > 0 {
		sc.Clients = *clients
	}
	if *logMB > 0 {
		sc.LogSizeMB = *logMB
	}

	var appList []string
	for _, a := range splitComma(*apps) {
		appList = append(appList, a)
	}

	want := map[string]bool{}
	for _, arg := range flag.Args() {
		if arg == "all" {
			for _, e := range experimentOrder {
				want[e] = true
			}
			continue
		}
		want[arg] = true
	}

	start := time.Now()
	for _, exp := range experimentOrder {
		if !want[exp] {
			continue
		}
		delete(want, exp)
		if err := run(exp, sc, *seed, appList); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", exp, err)
			os.Exit(1)
		}
	}
	for exp := range want {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %v)\n", exp, experimentOrder)
		os.Exit(2)
	}
	fmt.Printf("\n[done in %v wall-clock]\n", time.Since(start).Round(time.Second))
}

func run(exp string, sc bench.Scale, seed int64, apps []string) error {
	banner(exp)
	switch exp {
	case "table1":
		res, err := bench.Table1(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "table2":
		fmt.Println(bench.Table2())
	case "fig1":
		for _, app := range apps {
			res, err := bench.Fig1(app, sc, seed)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		}
	case "fig1d":
		res, err := bench.Fig1d(seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "fig8":
		res, err := bench.Fig8(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "fig9":
		for _, app := range apps {
			res, err := bench.Fig9(app, sc, seed)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		}
	case "fig10":
		for _, app := range apps {
			res, err := bench.Fig10(app, sc, seed)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		}
	case "fig11a":
		res, err := bench.Fig11a(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "fig11b":
		res, err := bench.Fig11b(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "table3":
		res, err := bench.Table3(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "fig12":
		res, err := bench.Fig12(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "ablate-repl":
		res, err := bench.AblateReplication(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "ablate-split":
		res, err := bench.AblateSplit(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "ablate-nolog":
		res, err := bench.AblateNoLog(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	default:
		return fmt.Errorf("unknown experiment")
	}
	return nil
}

func banner(exp string) {
	fmt.Printf("==== %s ====\n", exp)
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
