// Command splitft-bench regenerates the paper's tables and figures on the
// simulated testbed. Each experiment prints rows shaped like the paper's;
// EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Usage:
//
//	splitft-bench [flags] <experiment> [<experiment>...]
//	splitft-bench all
//	splitft-bench calibrate            # calibration gate for the selected profile
//	splitft-bench sweep                # fig8-style micro across all named profiles
//	splitft-bench trace <experiment>   # run + print the per-phase span aggregation
//	splitft-bench -trace out.json fig8 # also write a Chrome trace-event JSON
//	splitft-bench -profile CX6RoCE100 fig8
//	splitft-bench -profile my-hw.json fig8
//	splitft-bench perf                 # simulator wall-clock suite -> BENCH_simnet.json
//	splitft-bench -cpuprofile cpu.pb.gz perf
//
// Experiments: table1 table2 fig1 fig1d fig8 fig9 fig10 fig11a fig11b
// table3 fig12 ablate-repl ablate-split ablate-nolog calibrate sweep perf
// scale dfs repl
//
// The -replicate flag overrides the NCL replication policy for every
// experiment (mirror, mirror:F, ec:K,M, quorum); the repl experiment sweeps
// all policies across all named profiles and writes BENCH_repl.json.
//
// The -profile flag selects the hardware cost model: a built-in name (see
// internal/model: CX4RoCE25 is the paper-faithful baseline, CX6RoCE100 a
// faster fabric, FastDFS NVMe-class storage) or a path to a JSON profile.
//
// Tracing: -trace FILE records every layer's spans (rpc, rdma, dfs, raft,
// controller, peer, ncl, core, app) on the virtual clock and writes them as
// Chrome trace-event JSON (load in chrome://tracing or https://ui.perfetto.dev).
// The trace subcommand runs the named experiments with tracing on and prints
// the per-(layer, op) aggregation table instead of writing a file. Traces are
// deterministic: same profile, seed and experiment produce byte-identical
// output.
//
// Profiling: -cpuprofile FILE and -memprofile FILE write runtime/pprof
// profiles of the host process (CPU sampled over the whole run; heap at
// exit). Combine with perf or any experiment to see where simulation
// wall-clock goes: `go tool pprof cpu.pb.gz`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"splitft/internal/bench"
	"splitft/internal/model"
	"splitft/internal/ncl"
	"splitft/internal/trace"
)

var experimentOrder = []string{
	"table1", "table2", "fig1", "fig1d", "fig8", "fig9", "fig10",
	"fig11a", "fig11b", "table3", "fig12", "ablate-repl", "ablate-split", "ablate-nolog",
	"calibrate", "sweep", "perf", "scale", "dfs", "repl", "chaos",
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: splitft-bench [flags] [trace] <experiment...|all>\n")
	fmt.Fprintf(os.Stderr, "experiments: %v\n", experimentOrder)
	fmt.Fprintf(os.Stderr, "  calibrate  runs the cost-model calibration gate for the selected profile\n")
	fmt.Fprintf(os.Stderr, "  sweep      reruns the fig8 micro across all named profiles\n")
	fmt.Fprintf(os.Stderr, "  perf       runs the simulator wall-clock suite and writes -perfout\n")
	fmt.Fprintf(os.Stderr, "  scale      sweeps open-loop clients across controller shard counts, writes -scaleout\n")
	fmt.Fprintf(os.Stderr, "  dfs        sweeps the extent data path (flat vs chain, IO sizes, chain shapes), writes -dfsout\n")
	fmt.Fprintf(os.Stderr, "  repl       sweeps NCL replication policies x profiles (memory, write latency, recovery), writes -replout\n")
	fmt.Fprintf(os.Stderr, "  chaos      sweeps fault schedules x policies x seeds with per-event durability audits, writes -chaosout\n")
	fmt.Fprintf(os.Stderr, "  trace      runs the experiments with tracing on and prints the span aggregation\n")
	fmt.Fprintf(os.Stderr, "profiles (-profile): %v, or a path to a JSON profile file\n", model.Names())
	flag.PrintDefaults()
}

func main() { os.Exit(realMain()) }

// realMain carries the exit code back through a normal return so deferred
// cleanups (CPU profile flush) run before the process exits.
func realMain() int {
	var (
		quick      = flag.Bool("quick", false, "use the reduced QuickScale (seconds per experiment)")
		keys       = flag.Int64("keys", 0, "override row count for kvstore/redstore loads")
		dur        = flag.Duration("dur", 0, "override measured window per data point")
		clients    = flag.Int("clients", 0, "override client count for fixed-client experiments")
		logMB      = flag.Int("logmb", 0, "override recovery-log size in MiB (paper: 60)")
		seed       = flag.Int64("seed", 1, "simulation seed (also seeds the YCSB workload generators)")
		apps       = flag.String("apps", "kvstore,redstore,litedb", "comma-separated app list for fig1/fig9/fig10")
		profile    = flag.String("profile", "", "hardware profile: a built-in name or a JSON file path (default: CX4RoCE25)")
		traceOut   = flag.String("trace", "", "record spans and write a Chrome trace-event JSON to this file")
		perfOut    = flag.String("perfout", "BENCH_simnet.json", "output path for the perf subcommand's JSON report")
		scaleOut   = flag.String("scaleout", "BENCH_scale.json", "output path for the scale subcommand's JSON report")
		dfsOut     = flag.String("dfsout", "BENCH_dfs.json", "output path for the dfs subcommand's JSON report")
		replOut    = flag.String("replout", "BENCH_repl.json", "output path for the repl subcommand's JSON report")
		chaosOut   = flag.String("chaosout", "BENCH_chaos.json", "output path for the chaos subcommand's JSON report")
		replicate  = flag.String("replicate", "", "NCL replication policy for all experiments: mirror|mirror:F|ec:K,M|quorum")
		scaleCli   = flag.String("scaleclients", "", "comma-separated client counts for the scale sweep (default 10,100,250,500,1000)")
		scaleShard = flag.String("scaleshards", "", "comma-separated shard counts for the scale sweep (default 1,8)")
		cpuprofile = flag.String("cpuprofile", "", "write a runtime/pprof CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a runtime/pprof heap profile at exit to this file")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		return 2
	}
	args := flag.Args()
	aggregate := false
	if args[0] == "trace" {
		aggregate = true
		args = args[1:]
		if len(args) == 0 {
			usage()
			return 2
		}
	}

	sc := bench.DefaultScale()
	if *quick {
		sc = bench.QuickScale()
	}
	if *keys > 0 {
		sc.LoadKeys = *keys
	}
	if *dur > 0 {
		sc.RunDur = *dur
	}
	if *clients > 0 {
		sc.Clients = *clients
	}
	if *logMB > 0 {
		sc.LogSizeMB = *logMB
	}
	if *profile != "" {
		prof, err := model.Resolve(*profile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "splitft-bench: %v\n", err)
			return 2
		}
		sc.Profile = prof
	}
	if *replicate != "" {
		if _, err := ncl.ParsePolicy(*replicate); err != nil {
			fmt.Fprintf(os.Stderr, "splitft-bench: -replicate: %v\n", err)
			return 2
		}
		if sc.Profile == nil {
			sc.Profile = model.Baseline()
		}
		sc.Profile.NCL.Replication = *replicate
	}

	var col *trace.Collector
	if aggregate || *traceOut != "" {
		col = trace.New()
		sc.Trace = col
	}

	appList := splitComma(*apps)

	scaleCfg := bench.DefaultScaleConfig()
	if *quick {
		scaleCfg = bench.SmokeScaleConfig()
	}
	if *scaleCli != "" {
		v, err := parseIntList(*scaleCli)
		if err != nil {
			fmt.Fprintf(os.Stderr, "splitft-bench: -scaleclients: %v\n", err)
			return 2
		}
		scaleCfg.Clients = v
	}
	if *scaleShard != "" {
		v, err := parseIntList(*scaleShard)
		if err != nil {
			fmt.Fprintf(os.Stderr, "splitft-bench: -scaleshards: %v\n", err)
			return 2
		}
		scaleCfg.Shards = v
	}

	// Validate experiment names up front so a typo fails before hours of
	// simulation, not after.
	known := map[string]bool{}
	for _, e := range experimentOrder {
		known[e] = true
	}
	want := map[string]bool{}
	for _, arg := range args {
		if arg == "all" {
			for _, e := range experimentOrder {
				want[e] = true
			}
			continue
		}
		if !known[arg] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %v)\n", arg, experimentOrder)
			return 2
		}
		want[arg] = true
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "splitft-bench: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "splitft-bench: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("[cpu profile written to %s]\n", *cpuprofile)
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "splitft-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "splitft-bench: %v\n", err)
				return
			}
			fmt.Printf("[heap profile written to %s]\n", *memprofile)
		}()
	}

	start := time.Now()
	for _, exp := range experimentOrder {
		if !want[exp] {
			continue
		}
		if err := run(exp, sc, *seed, appList, *perfOut, *scaleOut, *dfsOut, *replOut, *chaosOut, scaleCfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", exp, err)
			return 1
		}
	}
	if aggregate {
		banner("trace aggregation")
		fmt.Print(trace.RenderAggregate(trace.Aggregate(col.Spans())))
	}
	if *traceOut != "" {
		if err := trace.WriteChromeFile(*traceOut, col.Spans()); err != nil {
			fmt.Fprintf(os.Stderr, "splitft-bench: write trace: %v\n", err)
			return 1
		}
		fmt.Printf("\n[trace: %d spans written to %s]\n", col.Len(), *traceOut)
	}
	fmt.Printf("\n[done in %v wall-clock]\n", time.Since(start).Round(time.Second))
	return 0
}

func run(exp string, sc bench.Scale, seed int64, apps []string, perfOut, scaleOut, dfsOut, replOut, chaosOut string, scaleCfg bench.ScaleConfig) error {
	banner(exp)
	switch exp {
	case "table1":
		res, err := bench.Table1(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "table2":
		fmt.Println(bench.Table2())
	case "fig1":
		for _, app := range apps {
			res, err := bench.Fig1(app, sc, seed)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		}
	case "fig1d":
		res, err := bench.Fig1d(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "fig8":
		res, err := bench.Fig8(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "fig9":
		for _, app := range apps {
			res, err := bench.Fig9(app, sc, seed)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		}
	case "fig10":
		for _, app := range apps {
			res, err := bench.Fig10(app, sc, seed)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
		}
	case "fig11a":
		res, err := bench.Fig11a(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "fig11b":
		res, err := bench.Fig11b(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "table3":
		res, err := bench.Table3(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "fig12":
		res, err := bench.Fig12(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "ablate-repl":
		res, err := bench.AblateReplication(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "ablate-split":
		res, err := bench.AblateSplit(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "ablate-nolog":
		res, err := bench.AblateNoLog(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "calibrate":
		rep, err := bench.Calibrate(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
		if !rep.Pass() {
			return fmt.Errorf("calibration failed")
		}
	case "sweep":
		res, err := bench.Sweep(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "perf":
		rep, err := bench.Perf(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
		if perfOut != "" {
			if err := rep.WriteJSON(perfOut); err != nil {
				return err
			}
			fmt.Printf("[perf report written to %s]\n", perfOut)
		}
	case "scale":
		rep, err := bench.ScaleRun(scaleCfg, sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
		if scaleOut != "" {
			if err := rep.WriteJSON(scaleOut); err != nil {
				return err
			}
			fmt.Printf("[scale report written to %s]\n", scaleOut)
		}
	case "dfs":
		rep, err := bench.RunDfs(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
		if dfsOut != "" {
			if err := rep.WriteJSON(dfsOut); err != nil {
				return err
			}
			fmt.Printf("[dfs report written to %s]\n", dfsOut)
		}
	case "repl":
		rep, err := bench.RunRepl(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
		if replOut != "" {
			if err := rep.WriteJSON(replOut); err != nil {
				return err
			}
			fmt.Printf("[repl report written to %s]\n", replOut)
		}
	case "chaos":
		rep, err := bench.RunChaos(sc, seed)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
		if chaosOut != "" {
			if err := rep.WriteJSON(chaosOut); err != nil {
				return err
			}
			fmt.Printf("[chaos report written to %s]\n", chaosOut)
		}
	default:
		return fmt.Errorf("unknown experiment")
	}
	return nil
}

func banner(exp string) {
	fmt.Printf("==== %s ====\n", exp)
}

func parseIntList(s string) ([]int, error) {
	parts := splitComma(s)
	if len(parts) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	out := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", p)
		}
		out[i] = n
	}
	return out, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
