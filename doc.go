// Package splitft is a from-scratch Go reproduction of "SplitFT: Fault
// Tolerance for Disaggregated Datacenters via Remote Memory Logging"
// (Luo, Alagappan, Ganesan — EuroSys 2024).
//
// The system splits storage-centric applications' writes: large background
// writes (SSTables, snapshots, checkpoints) go straight to the
// disaggregated file system, while small synchronous log writes are made
// fault-tolerant within the compute layer by near-compute logs (NCL) —
// replication to spare memory on 2f+1 log peers via 1-sided RDMA writes.
//
// Everything the paper's evaluation depends on is implemented in this
// module, bottom to top: a deterministic discrete-event datacenter
// simulator (internal/simnet), simulated RDMA verbs (internal/rdma), a
// CephFS-like disaggregated file system (internal/dfs), a Raft-replicated
// ZooKeeper-style controller (internal/raft, internal/controller), log
// peers (internal/peer), the NCL library (internal/ncl), the SplitFT POSIX
// layer with the O_NCL flag (internal/core), three ported applications
// (internal/apps/...), a YCSB generator (internal/ycsb), a protocol model
// checker (internal/modelcheck), and the benchmark harness regenerating
// every table and figure of the paper (internal/bench, cmd/splitft-bench).
//
// Every layer emits deterministic spans on the virtual clock into
// internal/trace; the figures' breakdowns (Fig 1, Fig 11b, Table 3) are
// span queries over one collector. `splitft-bench -trace out.json <exp>`
// (and the examples' -trace flags) export Chrome trace-event JSON, and
// `splitft-bench trace <exp>` prints a per-(layer, op) aggregation table.
//
// All calibrated hardware constants live in internal/model as named
// Profiles (CX4RoCE25 — the paper's testbed and the baseline —
// CX6RoCE100 and FastDFS); pick one with `splitft-bench -profile
// CX6RoCE100 fig8`, check a profile against live micro-probes with
// `splitft-bench calibrate`, and compare all profiles with
// `splitft-bench sweep`.
//
// See README.md for a walkthrough, DESIGN.md for the system inventory and
// simulation-substitution rationale, and EXPERIMENTS.md for paper-vs-
// measured results.
package splitft
